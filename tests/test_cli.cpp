// CliFlags strictness tests: the unknown-flag wall (check_unknown) and the
// full-token numeric parsing that keeps `--threads 4abc` from silently
// running with 4.  The basic parsing forms are covered in test_common.cpp;
// this suite pins the fail-loud contract the bench/example binaries rely on.
#include "common/cli.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

namespace ecthub {
namespace {

TEST(CliFlagsUnknown, UnconsumedFlagThrowsByName) {
  // The motivating bug: `--lockstep-treads 4` parsed fine and silently ran
  // defaults because nothing ever asked for the typo'd key.
  const char* argv[] = {"prog", "--lockstep-treads", "4"};
  const CliFlags flags(3, argv);
  (void)flags.get_int("lockstep-threads", 1);
  try {
    flags.check_unknown();
    FAIL() << "check_unknown accepted an unconsumed flag";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("--lockstep-treads"), std::string::npos)
        << "the error must name the offending flag: " << e.what();
  }
}

TEST(CliFlagsUnknown, ConsumedFlagsPass) {
  const char* argv[] = {"prog", "--alpha", "3", "--beta=x", "--gamma"};
  const CliFlags flags(5, argv);
  (void)flags.get_int("alpha", 0);
  (void)flags.get_string("beta", "");
  (void)flags.get_bool("gamma");
  EXPECT_NO_THROW(flags.check_unknown());
}

TEST(CliFlagsUnknown, HasCountsAsConsumption) {
  // Conditional readers probe with has() first; the probe alone must mark
  // the flag recognized even when the branch never reads the value.
  const char* argv[] = {"prog", "--metro", "8"};
  const CliFlags flags(3, argv);
  EXPECT_TRUE(flags.has("metro"));
  EXPECT_NO_THROW(flags.check_unknown());
}

TEST(CliFlagsUnknown, AbsentFlagReadsDoNotMaskOtherUnknowns) {
  const char* argv[] = {"prog", "--oops", "1"};
  const CliFlags flags(3, argv);
  (void)flags.get_int("days", 7);  // absent: returns the default
  EXPECT_THROW(flags.check_unknown(), std::invalid_argument);
}

TEST(CliFlagsUnknown, ListsEveryUnknownFlag) {
  const char* argv[] = {"prog", "--first-typo", "1", "--second-typo", "2"};
  const CliFlags flags(5, argv);
  try {
    flags.check_unknown();
    FAIL() << "check_unknown accepted two unconsumed flags";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("--first-typo"), std::string::npos) << what;
    EXPECT_NE(what.find("--second-typo"), std::string::npos) << what;
  }
}

TEST(CliFlagsUnknown, NoArgumentsIsVacuouslyClean) {
  const char* argv[] = {"prog"};
  const CliFlags flags(1, argv);
  EXPECT_NO_THROW(flags.check_unknown());
}

TEST(CliFlagsUnknown, StrayPositionalsThrowUnlessRead) {
  // `stations=2500` without the leading -- parses as a positional and used
  // to silently run defaults — the same bug class as a typo'd flag name.
  const char* argv[] = {"prog", "stations=2500", "--seed", "7"};
  const CliFlags flags(4, argv);
  (void)flags.get_int("seed", 0);
  try {
    flags.check_unknown();
    FAIL() << "check_unknown accepted a stray positional";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("stations=2500"), std::string::npos)
        << "the error must name the stray argument: " << e.what();
  }
}

TEST(CliFlagsUnknown, ReadingPositionalsWaivesTheStrayCheck) {
  // A binary that consumes positionals declares so by reading positional().
  const char* argv[] = {"prog", "input.ecsh", "--seed", "7"};
  const CliFlags flags(4, argv);
  (void)flags.get_int("seed", 0);
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_NO_THROW(flags.check_unknown());
}

TEST(CliFlagsStrict, IntRejectsTrailingGarbage) {
  // std::stoll("4abc") yields 4; the accessor must reject the partial parse.
  const char* argv[] = {"prog", "--threads", "4abc"};
  const CliFlags flags(3, argv);
  EXPECT_THROW((void)flags.get_int("threads", 1), std::invalid_argument);
}

TEST(CliFlagsStrict, DoubleRejectsTrailingGarbage) {
  const char* argv[] = {"prog", "--discount", "0.2x", "--rate", "1e3junk"};
  const CliFlags flags(5, argv);
  EXPECT_THROW((void)flags.get_double("discount", 0.0), std::invalid_argument);
  EXPECT_THROW((void)flags.get_double("rate", 0.0), std::invalid_argument);
}

TEST(CliFlagsStrict, CleanNumbersStillParse) {
  const char* argv[] = {"prog", "--threads", "-4", "--discount", "0.25", "--rate", "1e3"};
  const CliFlags flags(7, argv);
  EXPECT_EQ(flags.get_int("threads", 0), -4);
  EXPECT_DOUBLE_EQ(flags.get_double("discount", 0.0), 0.25);
  EXPECT_DOUBLE_EQ(flags.get_double("rate", 0.0), 1000.0);
  EXPECT_NO_THROW(flags.check_unknown());
}

TEST(CliFlagsStrict, BooleanSwitchValueIsNotAnInteger) {
  // `--n` with no value parses as the switch value "true"; asking for an
  // integer must fail loud, not yield some truncation of "true".
  const char* argv[] = {"prog", "--n"};
  const CliFlags flags(2, argv);
  EXPECT_THROW((void)flags.get_int("n", 0), std::invalid_argument);
}

}  // namespace
}  // namespace ecthub
