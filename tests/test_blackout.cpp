// Failure-injection tests: grid outages carried by the backup battery
// (the Eq. 6 reserve guarantee, exercised).
#include "battery/reserve.hpp"
#include "core/blackout.hpp"

#include <gtest/gtest.h>

namespace ecthub::core {
namespace {

battery::BatteryConfig small_pack() {
  battery::BatteryConfig cfg;
  cfg.capacity_kwh = 20.0;
  cfg.charge_rate_kw = 5.0;
  cfg.discharge_rate_kw = 5.0;
  cfg.discharge_efficiency = 0.9;
  cfg.soc_min_frac = 0.1;
  return cfg;
}

TEST(RideThrough, SurvivesWhenEnergySuffices) {
  // 3 kW for 3 h = 9 kWh delivered needs 10 kWh stored at eta 0.9;
  // SoC 15 kWh with hard floor 2 kWh leaves 13 kWh -> survives.
  const auto r = ride_through(small_pack(), 15.0, {3.0, 3.0, 3.0}, 1.0);
  EXPECT_TRUE(r.survived);
  EXPECT_NEAR(r.energy_used_kwh, 9.0, 1e-9);
  EXPECT_NEAR(r.final_soc_kwh, 15.0 - 10.0, 1e-9);
}

TEST(RideThrough, FailsWhenDepleted) {
  // 4 kW for 5 h = 20 kWh delivered; only (6 - 2) * 0.9 = 3.6 kWh available.
  const auto r = ride_through(small_pack(), 6.0, {4.0, 4.0, 4.0, 4.0, 4.0}, 1.0);
  EXPECT_FALSE(r.survived);
  EXPECT_LT(r.slots_survived, 5.0);
}

TEST(RideThrough, FailsWhenDrawExceedsRate) {
  const auto r = ride_through(small_pack(), 18.0, {6.0}, 1.0);  // > 5 kW rate
  EXPECT_FALSE(r.survived);
}

TEST(RideThrough, UsesFullBandDownToHardMinimum) {
  // Trading floors don't apply during blackouts: only soc_min does.
  battery::BatteryConfig cfg = small_pack();
  const auto r = ride_through(cfg, 20.0, std::vector<double>(4, 4.0), 1.0);
  // 16 kWh delivered needs 17.8 kWh stored; available (20-2)*0.9 = 16.2.
  EXPECT_TRUE(r.survived);
}

TEST(RideThrough, Validation) {
  EXPECT_THROW((void)ride_through(small_pack(), 10.0, {1.0}, 0.0), std::invalid_argument);
  EXPECT_THROW((void)ride_through(small_pack(), 10.0, {-1.0}, 1.0), std::invalid_argument);
}

TEST(DrawOutages, CountScalesWithRate) {
  OutageModel calm;
  calm.rate_per_month = 0.5;
  OutageModel stormy;
  stormy.rate_per_month = 10.0;
  Rng rng_a(1), rng_b(1);
  const auto few = draw_outages(calm, 24 * 90, 1.0, rng_a);
  const auto many = draw_outages(stormy, 24 * 90, 1.0, rng_b);
  EXPECT_LT(few.size(), many.size());
}

TEST(DrawOutages, EventsWithinHorizonAndSorted) {
  OutageModel model;
  model.rate_per_month = 5.0;
  Rng rng(2);
  const auto events = draw_outages(model, 24 * 60, 1.0, rng);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_LT(events[i].start_slot, 24u * 60u);
    EXPECT_GE(events[i].duration_slots, 1u);
    if (i > 0) {
      EXPECT_GE(events[i].start_slot, events[i - 1].start_slot);
    }
  }
}

TEST(DrawOutages, Validation) {
  OutageModel bad;
  bad.max_duration_h = 0.5;
  bad.min_duration_h = 1.0;
  Rng rng(3);
  EXPECT_THROW(draw_outages(bad, 24, 1.0, rng), std::invalid_argument);
  OutageModel ok;
  EXPECT_THROW(draw_outages(ok, 0, 1.0, rng), std::invalid_argument);
}

TEST(OutageSurvival, ProperReserveGuaranteesSurvival) {
  // Size the floor for the worst 8-hour window (the max outage length);
  // survival at that floor must be 100%.
  const std::vector<double> bs(24 * 14, 3.0);  // constant 3 kW
  battery::BatteryConfig pack = small_pack();
  pack.capacity_kwh = 60.0;
  OutageModel model;
  model.min_duration_h = 1.0;
  model.max_duration_h = 8.0;
  const double reserve = battery::reserve_energy_worst_window(bs, 8, 1.0);  // 24 kWh
  const double floor_frac =
      battery::reserve_floor_fraction(reserve, pack.capacity_kwh, pack.discharge_efficiency);
  const double floor_kwh = floor_frac * pack.capacity_kwh + pack.soc_min_frac * pack.capacity_kwh;
  const auto stats = outage_survival(pack, floor_kwh, bs, model, 1.0, 200, Rng(4));
  EXPECT_DOUBLE_EQ(stats.survival_rate, 1.0);
}

TEST(OutageSurvival, UndersizedReserveFails) {
  const std::vector<double> bs(24 * 14, 3.0);
  battery::BatteryConfig pack = small_pack();
  OutageModel model;
  model.min_duration_h = 6.0;
  model.max_duration_h = 10.0;
  // SoC barely above the hard floor: long outages must fail.
  const auto stats = outage_survival(pack, 4.0, bs, model, 1.0, 200, Rng(5));
  EXPECT_LT(stats.survival_rate, 0.5);
}

TEST(OutageSurvival, Validation) {
  battery::BatteryConfig pack = small_pack();
  OutageModel model;
  EXPECT_THROW((void)outage_survival(pack, 5.0, {}, model, 1.0, 10, Rng(6)),
               std::invalid_argument);
  EXPECT_THROW((void)outage_survival(pack, 5.0, {1.0}, model, 1.0, 0, Rng(6)),
               std::invalid_argument);
}

}  // namespace
}  // namespace ecthub::core
