// Tests for the process-sharded sweep subsystem: the contiguous shard
// partitioner, the versioned shard serialization (round trips, typed
// corruption rejection), the fork/merge ShardDriver, and the headline
// identity guarantee — a 64-hub all-scenario sweep sharded 1/2/4/8 ways
// through real forked worker processes merges byte-identical (serialized
// report compared) to the single-process FleetRunner run.
#include "policy/drl_policy.hpp"
#include "sim/fleet_runner.hpp"
#include "sim/metro.hpp"
#include "sim/report.hpp"
#include "sim/scenario.hpp"
#include "sim/shard.hpp"
#include "sim/shard_driver.hpp"
#include "sim/shard_io.hpp"
#include "spatial/metro.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace ecthub::sim {
namespace {

namespace fs = std::filesystem;

// Builds `n` small jobs cycling through the built-in scenarios.
std::vector<FleetJob> make_jobs(std::size_t n, std::size_t days = 1,
                                SchedulerKind sched = SchedulerKind::kGreedyPrice) {
  const ScenarioRegistry registry = ScenarioRegistry::with_builtins();
  return make_fleet_jobs(registry, registry.keys(), n, days, sched);
}

// A small randomly-initialized actor checkpoint matching the default hub
// observation layout — training is irrelevant for identity testing.
std::shared_ptr<const policy::DrlCheckpoint> tiny_checkpoint() {
  nn::Rng rng(123);
  policy::DrlPolicyConfig cfg;
  cfg.state_dim = policy::ObservationLayout{}.dim();
  cfg.trunk_dim = 16;
  cfg.head_dim = 8;
  policy::DrlPolicy actor(cfg, rng);
  return std::make_shared<policy::DrlCheckpoint>(actor.checkpoint());
}

// The headline job mix: all six scenarios round-robin, three scheduler
// families interleaved (greedy / TOU / the batched DRL actor) so the report
// carries multiple scenario AND scheduler groups.
std::vector<FleetJob> make_mixed_jobs(std::size_t n) {
  std::vector<FleetJob> jobs = make_jobs(n);
  const auto checkpoint = tiny_checkpoint();
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (i % 3 == 1) {
      jobs[i].scheduler = SchedulerKind::kTou;
    } else if (i % 3 == 2) {
      jobs[i].scheduler = SchedulerKind::kDrl;
      jobs[i].checkpoint = checkpoint;
    }
  }
  return jobs;
}

// A fully populated synthetic result — every serialized field non-default,
// so round-trip comparisons cover the whole record.
HubRunResult fake_result(std::size_t hub_id, const std::string& scenario = "urban",
                         SchedulerKind sched = SchedulerKind::kGreedyPrice) {
  HubRunResult r;
  r.hub_id = hub_id;
  r.hub_name = scenario + "-" + std::to_string(hub_id);
  r.scenario = scenario;
  r.scheduler = sched;
  r.seed = mix_seed(7, hub_id);
  r.episodes = 3;
  r.slots_per_episode = 48;
  r.revenue = 101.25 + static_cast<double>(hub_id);
  r.grid_cost = 40.5;
  r.bp_cost = 2.125;
  r.profit = r.revenue - r.grid_cost - r.bp_cost;
  r.episode_profit = {19.5, 0.1 * static_cast<double>(hub_id), -3.25};
  r.soc = {0.5, 0.625, 0.25, 0.875, 0.5625, 81.75, 48};
  r.through_kwh = 12.5 + static_cast<double>(hub_id);
  r.spill_exported_kwh = 3.75;
  r.spill_served_kwh = 1.5;
  r.spill_dropped_kwh = 0.625;
  r.outage_slots = 5;
  return r;
}

// A self-consistent single-shard artifact over `count` fake results.
ShardData fake_shard(std::size_t count, std::size_t shard_index = 0,
                     std::size_t shard_count = 1, std::size_t job_count = 0) {
  ShardData shard;
  shard.plan = plan_shard(job_count == 0 ? count * shard_count : job_count, shard_index,
                          shard_count);
  for (std::size_t k = 0; k < shard.plan.size(); ++k) {
    shard.results.push_back(
        fake_result(shard.plan.begin + k, k % 2 == 0 ? "urban" : "rural",
                    k % 2 == 0 ? SchedulerKind::kGreedyPrice : SchedulerKind::kTou));
  }
  shard.report = AggregateReport(shard.results);
  return shard;
}

// Fresh per-test scratch directory under the gtest temp root.
fs::path scratch_dir(const std::string& name) {
  const fs::path dir = fs::path(testing::TempDir()) / ("ecthub_shard_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

// ------------------------------------------------------------ shard plan

TEST(ShardPlan, PartitionsExhaustivelyAndDisjointly) {
  for (std::size_t count = 0; count <= 21; ++count) {
    for (std::size_t n = 1; n <= 25; ++n) {
      std::size_t cursor = 0;  // ranges must tile [0, count) in order
      std::size_t min_size = count + 1;
      std::size_t max_size = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const ShardPlan plan = plan_shard(count, i, n);
        EXPECT_EQ(plan.shard_index, i);
        EXPECT_EQ(plan.shard_count, n);
        EXPECT_EQ(plan.job_count, count);
        EXPECT_EQ(plan.begin, cursor) << count << " jobs, shard " << i << "/" << n;
        EXPECT_LE(plan.begin, plan.end);
        cursor = plan.end;
        min_size = std::min(min_size, plan.size());
        max_size = std::max(max_size, plan.size());
        EXPECT_EQ(plan, plan_shard(count, i, n));  // pure function
      }
      EXPECT_EQ(cursor, count) << count << " jobs over " << n << " shards";
      EXPECT_LE(max_size - min_size, 1u) << "unbalanced partition";
    }
  }
}

TEST(ShardPlan, SingleShardOwnsEverythingAndOvershardingIsEmpty) {
  const ShardPlan all = plan_shard(13, 0, 1);
  EXPECT_EQ(all.begin, 0u);
  EXPECT_EQ(all.end, 13u);
  EXPECT_EQ(all.size(), 13u);
  // n > jobs: the first `jobs` shards get one job each, the rest are empty.
  for (std::size_t i = 0; i < 9; ++i) {
    const ShardPlan plan = plan_shard(3, i, 9);
    EXPECT_EQ(plan.size(), i < 3 ? 1u : 0u) << "shard " << i;
    EXPECT_EQ(plan.empty(), i >= 3);
  }
}

TEST(ShardPlan, RejectsInvalidCoordinates) {
  EXPECT_THROW((void)plan_shard(4, 0, 0), std::invalid_argument);
  EXPECT_THROW((void)plan_shard(4, 2, 2), std::invalid_argument);
  EXPECT_THROW((void)plan_shard(0, 1, 1), std::invalid_argument);
}

TEST(ShardSpec, ParsesWellFormedSpecs) {
  EXPECT_EQ(parse_shard_spec("0/4"), (std::pair<std::size_t, std::size_t>{0, 4}));
  EXPECT_EQ(parse_shard_spec("3/4"), (std::pair<std::size_t, std::size_t>{3, 4}));
  EXPECT_EQ(parse_shard_spec("0/1"), (std::pair<std::size_t, std::size_t>{0, 1}));
  EXPECT_EQ(parse_shard_spec("11/12"), (std::pair<std::size_t, std::size_t>{11, 12}));
}

TEST(ShardSpec, RejectsPartialTokenParses) {
  // std::stoull stops at the first non-digit, so these were silently
  // accepted pre-fix: "1/4abc" ran as shard 1/4 and "0x1/4" as shard 0/4.
  EXPECT_THROW((void)parse_shard_spec("1/4abc"), std::invalid_argument);
  EXPECT_THROW((void)parse_shard_spec("0x1/4"), std::invalid_argument);
  EXPECT_THROW((void)parse_shard_spec("1a/4"), std::invalid_argument);
  EXPECT_THROW((void)parse_shard_spec(" 0/4"), std::invalid_argument);
  EXPECT_THROW((void)parse_shard_spec("0/4 "), std::invalid_argument);
  EXPECT_THROW((void)parse_shard_spec("+0/4"), std::invalid_argument);
  EXPECT_THROW((void)parse_shard_spec("-1/4"), std::invalid_argument);
}

TEST(ShardSpec, RejectsMalformedShapes) {
  EXPECT_THROW((void)parse_shard_spec(""), std::invalid_argument);
  EXPECT_THROW((void)parse_shard_spec("04"), std::invalid_argument);
  EXPECT_THROW((void)parse_shard_spec("/4"), std::invalid_argument);
  EXPECT_THROW((void)parse_shard_spec("0/"), std::invalid_argument);
  EXPECT_THROW((void)parse_shard_spec("/"), std::invalid_argument);
  EXPECT_THROW((void)parse_shard_spec("0//4"), std::invalid_argument);
  EXPECT_THROW((void)parse_shard_spec("0/4/8"), std::invalid_argument);
  EXPECT_THROW((void)parse_shard_spec("99999999999999999999/4"), std::invalid_argument);
}

TEST(ShardSpec, RejectsOutOfRangeCoordinates) {
  EXPECT_THROW((void)parse_shard_spec("0/0"), std::invalid_argument);
  EXPECT_THROW((void)parse_shard_spec("4/4"), std::invalid_argument);
  EXPECT_THROW((void)parse_shard_spec("5/4"), std::invalid_argument);
}

TEST(ShardPlan, ShardFleetJobsCopiesContiguousRanges) {
  const std::vector<FleetJob> jobs = make_jobs(7);
  std::size_t seen = 0;
  for (std::size_t i = 0; i < 3; ++i) {
    const ShardPlan plan = plan_shard(jobs.size(), i, 3);
    const std::vector<FleetJob> sub = shard_fleet_jobs(jobs, i, 3);
    ASSERT_EQ(sub.size(), plan.size());
    for (std::size_t k = 0; k < sub.size(); ++k) {
      EXPECT_EQ(sub[k].hub.name, jobs[plan.begin + k].hub.name);
      EXPECT_EQ(sub[k].scenario, jobs[plan.begin + k].scenario);
    }
    seen += sub.size();
  }
  EXPECT_EQ(seen, jobs.size());
}

TEST(ShardPlan, RejectsCoupledJobsWhenSharded) {
  spatial::MetroConfig metro_cfg;
  metro_cfg.num_hubs = 6;
  const spatial::MetroMap metro(metro_cfg, 42);
  const ScenarioRegistry reg = ScenarioRegistry::with_builtins();
  const std::vector<FleetJob> coupled =
      make_metro_fleet_jobs(metro, reg, reg.keys(), 1, SchedulerKind::kGreedyPrice);
  EXPECT_THROW((void)shard_fleet_jobs(coupled, 0, 2), std::invalid_argument);
  // A single shard is the whole fleet — coupling stays legal there.
  EXPECT_EQ(shard_fleet_jobs(coupled, 0, 1).size(), coupled.size());
}

// ------------------------------------------------------------ shard io

TEST(ShardIo, RoundTripsFieldExact) {
  const ShardData shard = fake_shard(5);
  const std::string bytes = serialize_shard(shard);
  const ShardData back = parse_shard(bytes);
  EXPECT_EQ(back.plan, shard.plan);
  ASSERT_EQ(back.results.size(), shard.results.size());
  for (std::size_t i = 0; i < shard.results.size(); ++i) {
    EXPECT_EQ(back.results[i], shard.results[i]) << "result " << i;  // field-exact
  }
  EXPECT_TRUE(back.report == shard.report);
  // Serialization is deterministic and idempotent through a round trip.
  EXPECT_EQ(serialize_shard(back), bytes);
}

TEST(ShardIo, SaveLoadRoundTripsThroughDisk) {
  const fs::path dir = scratch_dir("save_load");
  const ShardData shard = fake_shard(4, 1, 3, 10);
  const fs::path path = dir / ShardDriver::shard_file_name(1, 3);
  save_shard(path, shard);
  const ShardData back = load_shard(path);
  EXPECT_EQ(back.plan, shard.plan);
  EXPECT_EQ(back.results, shard.results);
  EXPECT_TRUE(back.report == shard.report);
  fs::remove_all(dir);
}

TEST(ShardIo, EmptyShardRoundTrips) {
  // n > jobs leaves trailing shards empty; their artifacts must still
  // serialize, load, and merge.
  const ShardData shard = fake_shard(0, 5, 6, 3);
  EXPECT_TRUE(shard.plan.empty());
  const ShardData back = parse_shard(serialize_shard(shard));
  EXPECT_EQ(back.plan, shard.plan);
  EXPECT_TRUE(back.results.empty());
}

TEST(ShardIo, TruncatedInputIsRejected) {
  const std::string bytes = serialize_shard(fake_shard(3));
  // Every strict prefix is a truncation: probe a spread of cut points
  // including inside the magic, the header, a section payload, and the
  // checksum trailer.
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{2}, std::size_t{6}, std::size_t{13},
        bytes.size() / 2, bytes.size() - 9, bytes.size() - 1}) {
    EXPECT_THROW((void)parse_shard(bytes.substr(0, keep)), ShardTruncatedError)
        << "prefix of " << keep << " bytes";
  }
}

TEST(ShardIo, BadMagicIsRejected) {
  std::string bytes = serialize_shard(fake_shard(3));
  bytes[0] = 'X';
  EXPECT_THROW((void)parse_shard(bytes), ShardMagicError);
  EXPECT_THROW((void)parse_shard("not a shard file at all"), ShardMagicError);
}

TEST(ShardIo, FutureVersionIsRejected) {
  std::string bytes = serialize_shard(fake_shard(3));
  bytes[4] = 2;  // version u32 lives at offset 4 (little-endian)
  EXPECT_THROW((void)parse_shard(bytes), ShardVersionError);
}

TEST(ShardIo, FlippedPayloadByteIsRejected) {
  const std::string pristine = serialize_shard(fake_shard(3));
  // Flip one byte in each section's payload region: the checksum catches it
  // before any payload byte is interpreted.
  for (const std::size_t at : {std::size_t{40}, pristine.size() / 2, pristine.size() - 20}) {
    std::string bytes = pristine;
    bytes[at] = static_cast<char>(static_cast<unsigned char>(bytes[at]) ^ 0x40u);
    EXPECT_THROW((void)parse_shard(bytes), ShardChecksumError) << "byte " << at;
  }
}

TEST(ShardIo, TrailingGarbageIsRejected) {
  std::string bytes = serialize_shard(fake_shard(2));
  bytes += "extra";
  EXPECT_THROW((void)parse_shard(bytes), ShardFormatError);
}

TEST(ShardIo, InconsistentReportSectionIsRejected) {
  // A shard whose report section does not aggregate its own results is
  // structurally corrupt even with a valid checksum.
  ShardData shard = fake_shard(3);
  shard.report.add(fake_result(99));
  EXPECT_THROW((void)parse_shard(serialize_shard(shard)), ShardFormatError);
}

TEST(ShardIo, MismatchedHubIdsAreRejected) {
  ShardData shard = fake_shard(3, 1, 2, 6);  // owns hubs [3, 6)
  shard.results[1].hub_id = 0;
  EXPECT_THROW((void)parse_shard(serialize_shard(shard)), ShardFormatError);
}

TEST(ShardIo, MissingFileIsIoError) {
  EXPECT_THROW((void)load_shard(fs::path(testing::TempDir()) / "ecthub_no_such.ecsh"),
               ShardIoError);
}

// ------------------------------------------------------------ report groups

TEST(AggregateReportShard, GroupStatsPlumbsCouplingColumns) {
  // Regression for the pre-shard asymmetry: through_kwh, spill-drop and
  // outage totals reached HubRunResult but never the group tables, so a
  // merged shard report could not reproduce the per-hub truth.
  const HubRunResult a = fake_result(0);
  const HubRunResult b = fake_result(1);
  GroupStats g;
  g.absorb(a);
  g.absorb(b);
  EXPECT_EQ(g.through_kwh.value(), a.through_kwh + b.through_kwh);
  EXPECT_EQ(g.spill_dropped_kwh.value(), a.spill_dropped_kwh + b.spill_dropped_kwh);
  EXPECT_EQ(g.outage_slots, a.outage_slots + b.outage_slots);
  const AggregateReport report({a, b});
  const TextTable table = report.scenario_table();
  EXPECT_EQ(table.num_cols(), 14u);
  const std::string csv = table.csv();
  EXPECT_NE(csv.find("through(kWh)"), std::string::npos);
  EXPECT_NE(csv.find("spill-drop(kWh)"), std::string::npos);
  EXPECT_NE(csv.find("outages"), std::string::npos);
}

TEST(AggregateReportShard, MergeIsBitExactForAnyGrouping) {
  std::vector<HubRunResult> results;
  for (std::size_t i = 0; i < 12; ++i) {
    results.push_back(fake_result(i, i % 3 == 0 ? "urban" : "rural",
                                  i % 2 == 0 ? SchedulerKind::kTou
                                             : SchedulerKind::kForecast));
    results.back().revenue = 1e16 + 0.0625 * static_cast<double>(i);  // fp-hostile
  }
  const AggregateReport whole(results);
  for (const std::size_t parts : {std::size_t{2}, std::size_t{3}, std::size_t{5}}) {
    AggregateReport merged;
    for (std::size_t i = 0; i < parts; ++i) {
      const ShardPlan plan = plan_shard(results.size(), i, parts);
      merged.merge(AggregateReport({results.begin() + static_cast<std::ptrdiff_t>(plan.begin),
                                    results.begin() + static_cast<std::ptrdiff_t>(plan.end)}));
    }
    EXPECT_TRUE(merged == whole) << parts << "-way merge";
    EXPECT_EQ(serialize_report(merged), serialize_report(whole)) << parts << "-way merge";
  }
}

// ------------------------------------------------------------ runner offset

TEST(FleetRunnerShard, HubIdOffsetPreservesGlobalSeedsOnSubRanges) {
  const std::vector<FleetJob> jobs = make_jobs(8);
  FleetRunnerConfig cfg;
  cfg.threads = 2;
  const std::vector<HubRunResult> whole = FleetRunner(cfg).run(jobs);

  FleetRunnerConfig sub_cfg = cfg;
  sub_cfg.hub_id_offset = 3;
  const std::vector<FleetJob> sub(jobs.begin() + 3, jobs.begin() + 6);
  const std::vector<HubRunResult> part = FleetRunner(sub_cfg).run(sub);
  ASSERT_EQ(part.size(), 3u);
  for (std::size_t k = 0; k < part.size(); ++k) {
    EXPECT_EQ(part[k], whole[3 + k]) << "hub " << 3 + k;  // bit-identical slice
  }
}

// ------------------------------------------------------------ shard driver

TEST(ShardDriverTest, RunShardMatchesTheSingleProcessSlice) {
  const std::vector<FleetJob> jobs = make_mixed_jobs(10);
  FleetRunnerConfig cfg;
  cfg.threads = 2;
  const std::vector<HubRunResult> whole = FleetRunner(cfg).run(jobs);
  const ShardDriver driver(cfg);
  for (std::size_t i = 0; i < 3; ++i) {
    const ShardData shard = driver.run_shard(jobs, i, 3);
    ASSERT_EQ(shard.results.size(), shard.plan.size());
    for (std::size_t k = 0; k < shard.results.size(); ++k) {
      EXPECT_EQ(shard.results[k], whole[shard.plan.begin + k])
          << "shard " << i << " result " << k;
    }
  }
}

TEST(ShardDriverTest, MergeRejectsIncompleteOrMixedShardSets) {
  const fs::path dir = scratch_dir("merge_validate");
  save_shard(dir / "a.ecsh", fake_shard(2, 0, 2, 4));
  save_shard(dir / "b.ecsh", fake_shard(2, 1, 2, 4));
  save_shard(dir / "other.ecsh", fake_shard(2, 0, 3, 6));  // different sweep

  EXPECT_THROW((void)ShardDriver::merge_shard_files({}), ShardDriverError);
  EXPECT_THROW((void)ShardDriver::merge_shard_files({dir / "a.ecsh"}), ShardDriverError);
  EXPECT_THROW((void)ShardDriver::merge_shard_files({dir / "a.ecsh", dir / "a.ecsh"}),
               ShardDriverError);
  EXPECT_THROW(
      (void)ShardDriver::merge_shard_files({dir / "a.ecsh", dir / "other.ecsh"}),
      ShardDriverError);
  EXPECT_THROW((void)ShardDriver::merge_shard_files({dir / "a.ecsh", dir / "missing.ecsh"}),
               ShardIoError);

  // The complete set merges, in either listing order.
  const ShardMerge merged =
      ShardDriver::merge_shard_files({dir / "b.ecsh", dir / "a.ecsh"});
  EXPECT_EQ(merged.results.size(), 4u);
  EXPECT_EQ(merged.report.totals().hubs, 4u);
  for (std::size_t i = 0; i < merged.results.size(); ++i) {
    EXPECT_EQ(merged.results[i].hub_id, i);
  }
  fs::remove_all(dir);
}

TEST(ShardDriverTest, ForkedWorkerFailurePropagates) {
  const fs::path dir = scratch_dir("worker_failure");
  // A DRL job without a checkpoint passes job construction but fails inside
  // the worker — the child exits 1 and the parent surfaces the shard.
  std::vector<FleetJob> jobs = make_jobs(4);
  jobs[3].scheduler = SchedulerKind::kDrl;
  jobs[3].checkpoint = nullptr;
  FleetRunnerConfig cfg;
  cfg.threads = 1;
  const ShardDriver driver(cfg);
  try {
    (void)driver.run_forked(jobs, 2, dir);
    FAIL() << "run_forked accepted a failing worker";
  } catch (const ShardDriverError& e) {
    EXPECT_NE(std::string(e.what()).find("exited with status 1"), std::string::npos)
        << e.what();
  }
  fs::remove_all(dir);
}

// ------------------------------------------------------------ headline

// The acceptance-criteria test: a 64-hub sweep over all six scenarios and
// three scheduler families (including the batched DRL actor), sharded
// 1/2/4/8 ways across real forked worker processes, must merge to an
// AggregateReport byte-identical in serialized form to the single-process
// FleetRunner run — and to identical per-hub results, field for field.
TEST(ShardIdentity, ForkedSweepMergesBitIdenticalToSingleProcess) {
  const std::vector<FleetJob> jobs = make_mixed_jobs(64);
  FleetRunnerConfig cfg;
  cfg.threads = 2;
  const std::vector<HubRunResult> baseline_results = FleetRunner(cfg).run(jobs);
  const AggregateReport baseline(baseline_results);
  const std::string baseline_bytes = serialize_report(baseline);

  const ShardDriver driver(cfg);
  for (const std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                              std::size_t{8}}) {
    const fs::path dir = scratch_dir("identity_" + std::to_string(n));
    const ShardMerge merged = driver.run_forked(jobs, n, dir);
    ASSERT_EQ(merged.results.size(), baseline_results.size()) << n << "-way";
    for (std::size_t i = 0; i < merged.results.size(); ++i) {
      ASSERT_EQ(merged.results[i], baseline_results[i])
          << n << "-way sharding changed hub " << i;
    }
    EXPECT_TRUE(merged.report == baseline) << n << "-way";
    EXPECT_EQ(serialize_report(merged.report), baseline_bytes)
        << n << "-way merged report is not byte-identical";
    fs::remove_all(dir);
  }
}

}  // namespace
}  // namespace ecthub::sim
