// DecisionService contract tests: batch-vs-service bit-identity for every
// stateless policy kind across batching windows, concurrent-client
// determinism (the TSan workhorse), clean shutdown with in-flight requests,
// observability counters against an injected fake clock, and the
// zero-steady-state-allocation guarantee in the test_alloc counting-new
// style (this binary replaces global operator new/delete with a counter).
#include "common/rng.hpp"
#include "policy/drl_policy.hpp"
#include "policy/observation.hpp"
#include "policy/rule_policies.hpp"
#include "serve/decision_service.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <memory>
#include <new>
#include <numbers>
#include <span>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

// Counting operator-new hook, same replacement set as tests/test_alloc.cpp:
// every heap allocation in this binary bumps the counter so the steady-state
// decide() path can be audited for zero allocations.
void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  const std::size_t alignment =
      std::max(static_cast<std::size_t>(align), sizeof(void*));
  void* p = nullptr;
  if (posix_memalign(&p, alignment, size) != 0) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace ecthub::serve {
namespace {

std::uint64_t allocations() { return g_allocations.load(std::memory_order_relaxed); }

// Injected fake clock: advances by exactly 1 us per read, so a sequential
// request (one enqueue read, one scatter read) always measures 1 us of
// latency — the statistics become fully deterministic.
std::atomic<std::uint64_t> g_fake_clock{0};
std::uint64_t fake_now_us() { return g_fake_clock.fetch_add(1, std::memory_order_relaxed); }

// Synthetic but layout-valid observation rows (the test_policy idiom).
nn::Matrix fake_obs_batch(const policy::ObservationLayout& layout, Rng& rng,
                          std::size_t rows) {
  nn::Matrix m(rows, layout.dim());
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t i = 0; i < layout.soc_index(); ++i) m(r, i) = rng.uniform(0.0, 1.5);
    m(r, layout.soc_index()) = rng.uniform(0.0, 1.0);
    const double hour = static_cast<double>(r % 24);
    m(r, layout.hour_sin_index()) = std::sin(2.0 * std::numbers::pi * hour / 24.0);
    m(r, layout.hour_cos_index()) = std::cos(2.0 * std::numbers::pi * hour / 24.0);
  }
  return m;
}

std::span<const double> row_span(const nn::Matrix& m, std::size_t r) {
  return {m.data().data() + r * m.cols(), m.cols()};
}

// Every stateless policy family the service must serve bit-identically.
std::vector<std::shared_ptr<policy::Policy>> stateless_policies() {
  std::vector<std::shared_ptr<policy::Policy>> out;
  out.push_back(std::make_shared<policy::NoBatteryPolicy>());
  out.push_back(std::make_shared<policy::TouPolicy>());
  nn::Rng drl_rng(99);
  policy::DrlPolicyConfig cfg;
  cfg.state_dim = policy::ObservationLayout{}.dim();
  out.push_back(std::make_shared<policy::DrlPolicy>(cfg, drl_rng));
  return out;
}

// Drives `clients` threads through the service, each submitting its strided
// share of the observation rows, and returns one action per row.
std::vector<std::size_t> serve_all_rows(DecisionService& service, const nn::Matrix& obs,
                                        std::size_t clients) {
  std::vector<std::size_t> actions(obs.rows(), 0);
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (std::size_t t = 0; t < clients; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t r = t; r < obs.rows(); r += clients) {
        actions[r] = service.decide(row_span(obs, r));
      }
    });
  }
  for (auto& th : threads) th.join();
  return actions;
}

// ------------------------------------------------------- bit-identity

TEST(ServeBitIdentity, MatchesDecideBatchForEveryPolicyAcrossWindows) {
  const policy::ObservationLayout layout;
  Rng rng(7);
  const nn::Matrix obs = fake_obs_batch(layout, rng, 64);

  // Three window regimes: flush-every-request, fill-or-timer with a small
  // cap (full-batch flushes dominate), and timer-driven with a cap larger
  // than the client count (every flush is a timer flush).
  const ServiceConfig configs[] = {
      {.max_batch = 1, .max_wait_us = 0},
      {.max_batch = 8, .max_wait_us = 100},
      {.max_batch = 128, .max_wait_us = 200},
  };

  for (const auto& policy : stateless_policies()) {
    std::vector<std::size_t> expected(obs.rows(), 0);
    policy->decide_batch(obs, std::span<std::size_t>(expected));
    for (const ServiceConfig& cfg : configs) {
      DecisionService service(policy, layout.dim(), cfg);
      const std::vector<std::size_t> got = serve_all_rows(service, obs, 8);
      EXPECT_EQ(got, expected)
          << policy->name() << " diverged from decide_batch at max_batch="
          << cfg.max_batch << " max_wait_us=" << cfg.max_wait_us;
      const ServiceStats stats = service.stats();
      EXPECT_EQ(stats.requests, obs.rows());
      EXPECT_EQ(stats.queue_depth, 0u);
      EXPECT_GE(stats.flushes, obs.rows() / cfg.max_batch);
    }
  }
}

TEST(ServeBitIdentity, SingleSequentialClientIsBatchOfOne) {
  // With one caller the service degenerates to decide_batch row by row; a
  // zero wait window means no flush ever has a peer to wait for.
  const policy::ObservationLayout layout;
  Rng rng(11);
  const nn::Matrix obs = fake_obs_batch(layout, rng, 16);
  auto policy = std::make_shared<policy::TouPolicy>();
  std::vector<std::size_t> expected(obs.rows(), 0);
  policy->decide_batch(obs, std::span<std::size_t>(expected));

  DecisionService service(policy, layout.dim(), {.max_batch = 4, .max_wait_us = 0});
  for (std::size_t r = 0; r < obs.rows(); ++r) {
    EXPECT_EQ(service.decide(row_span(obs, r)), expected[r]) << "row " << r;
  }
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.requests, obs.rows());
  EXPECT_EQ(stats.flushes, obs.rows());  // one row per flush
  EXPECT_EQ(stats.batch_size_hist[1], obs.rows());
}

// ------------------------------------------------------- concurrency (TSan)

TEST(ServeConcurrency, ManyClientsStayDeterministicUnderContention) {
  // The TSan workhorse: sustained contention on one shared service, every
  // thread checking each answer against the decide_batch oracle in place.
  const policy::ObservationLayout layout;
  Rng rng(23);
  const nn::Matrix obs = fake_obs_batch(layout, rng, 64);
  nn::Rng drl_rng(31);
  policy::DrlPolicyConfig cfg;
  cfg.state_dim = layout.dim();
  auto policy = std::make_shared<policy::DrlPolicy>(cfg, drl_rng);
  std::vector<std::size_t> expected(obs.rows(), 0);
  policy->decide_batch(obs, std::span<std::size_t>(expected));

  DecisionService service(policy, layout.dim(), {.max_batch = 8, .max_wait_us = 50});
  constexpr std::size_t kClients = 8;
  constexpr std::size_t kRequestsPerClient = 40;
  std::atomic<std::uint64_t> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (std::size_t t = 0; t < kClients; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t i = 0; i < kRequestsPerClient; ++i) {
        const std::size_t r = (t * kRequestsPerClient + i * 13) % obs.rows();
        if (service.decide(row_span(obs, r)) != expected[r]) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0u);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.requests, kClients * kRequestsPerClient);
  EXPECT_LE(stats.max_queue_depth, kClients);
  EXPECT_GE(stats.mean_batch_size, 1.0);
}

// ------------------------------------------------------- shutdown

TEST(ServeShutdown, DrainsInflightRequestsWithCorrectActions) {
  // A huge batch cap and an hour-long window guarantee the worker is holding
  // the batch open when shutdown() lands: every blocked caller must still
  // receive its bit-identical action from the drain flush.
  const policy::ObservationLayout layout;
  Rng rng(5);
  const nn::Matrix obs = fake_obs_batch(layout, rng, 6);
  auto policy = std::make_shared<policy::TouPolicy>();
  std::vector<std::size_t> expected(obs.rows(), 0);
  policy->decide_batch(obs, std::span<std::size_t>(expected));

  DecisionService service(policy, layout.dim(),
                          {.max_batch = 128, .max_wait_us = 3'600'000'000ULL});
  std::vector<std::size_t> got(obs.rows(), 999);
  std::vector<std::thread> clients;
  clients.reserve(obs.rows());
  for (std::size_t r = 0; r < obs.rows(); ++r) {
    clients.emplace_back([&, r] { got[r] = service.decide(row_span(obs, r)); });
  }
  // All six must be parked in the pending queue before we pull the plug.
  while (service.stats().queue_depth < obs.rows()) std::this_thread::yield();

  service.shutdown();
  for (auto& th : clients) th.join();
  for (std::size_t r = 0; r < obs.rows(); ++r) {
    EXPECT_EQ(got[r], expected[r]) << "in-flight row " << r << " lost its action";
  }
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.requests, obs.rows());
  EXPECT_EQ(stats.queue_depth, 0u);
  EXPECT_EQ(stats.max_queue_depth, obs.rows());

  // After shutdown the service fails loudly instead of hanging.
  EXPECT_THROW((void)service.decide(row_span(obs, 0)), std::runtime_error);
  service.shutdown();  // idempotent
}

// ------------------------------------------------------- construction contract

TEST(ServeContract, RejectsStatefulPoliciesLikeDecideRows) {
  // GreedyPrice accumulates a realized-price window per decide() call;
  // micro-batching it would interleave unrelated callers into that state.
  const std::size_t dim = policy::ObservationLayout{}.dim();
  EXPECT_THROW(DecisionService(std::make_shared<policy::GreedyPricePolicy>(), dim),
               std::invalid_argument);
  EXPECT_THROW(DecisionService(std::make_shared<policy::ForecastPolicy>(), dim),
               std::invalid_argument);
  EXPECT_THROW(DecisionService(std::make_shared<policy::RandomPolicy>(), dim),
               std::invalid_argument);
}

TEST(ServeContract, ValidatesConstructionAndObservationShape) {
  const std::size_t dim = policy::ObservationLayout{}.dim();
  EXPECT_THROW(DecisionService(nullptr, dim), std::invalid_argument);
  EXPECT_THROW(DecisionService(std::make_shared<policy::NoBatteryPolicy>(), 0),
               std::invalid_argument);
  EXPECT_THROW(DecisionService(std::make_shared<policy::NoBatteryPolicy>(), dim,
                               {.max_batch = 0}),
               std::invalid_argument);

  DecisionService service(std::make_shared<policy::NoBatteryPolicy>(), dim);
  const std::vector<double> short_obs(dim - 1, 0.0);
  EXPECT_THROW((void)service.decide(short_obs), std::invalid_argument);
}

// ------------------------------------------------------- observability

TEST(ServeStats, FakeClockMakesLatencyPercentilesDeterministic) {
  // Sequential client + auto-advancing fake clock: every request reads the
  // clock once at enqueue and once at scatter, so each latency sample is
  // exactly 1 us and every percentile collapses to 1.0.
  g_fake_clock.store(0);
  const policy::ObservationLayout layout;
  Rng rng(13);
  const nn::Matrix obs = fake_obs_batch(layout, rng, 10);
  DecisionService service(std::make_shared<policy::NoBatteryPolicy>(), layout.dim(),
                          {.max_batch = 1, .max_wait_us = 0, .now_us = &fake_now_us});
  for (std::size_t r = 0; r < obs.rows(); ++r) (void)service.decide(row_span(obs, r));

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.requests, 10u);
  EXPECT_EQ(stats.flushes, 10u);
  EXPECT_EQ(stats.full_batch_flushes, 10u);  // max_batch == 1: every flush is full
  EXPECT_EQ(stats.timer_flushes, 0u);
  EXPECT_DOUBLE_EQ(stats.mean_batch_size, 1.0);
  ASSERT_EQ(stats.batch_size_hist.size(), 2u);
  EXPECT_EQ(stats.batch_size_hist[1], 10u);
  EXPECT_EQ(stats.latency_samples, 10u);
  EXPECT_DOUBLE_EQ(stats.latency_p50_us, 1.0);
  EXPECT_DOUBLE_EQ(stats.latency_p95_us, 1.0);
  EXPECT_DOUBLE_EQ(stats.latency_p99_us, 1.0);
  EXPECT_DOUBLE_EQ(stats.latency_max_us, 1.0);
}

TEST(ServeStats, PartialFlushesCountAsTimerFlushes) {
  // One sequential client against a 4-row cap: the queue never fills, so
  // every flush is released by the batching window, not the cap.
  const policy::ObservationLayout layout;
  Rng rng(17);
  const nn::Matrix obs = fake_obs_batch(layout, rng, 5);
  DecisionService service(std::make_shared<policy::NoBatteryPolicy>(), layout.dim(),
                          {.max_batch = 4, .max_wait_us = 500});
  for (std::size_t r = 0; r < obs.rows(); ++r) (void)service.decide(row_span(obs, r));

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.requests, 5u);
  EXPECT_EQ(stats.full_batch_flushes, 0u);
  EXPECT_EQ(stats.timer_flushes, stats.flushes);
  EXPECT_EQ(stats.batch_size_hist[1], stats.flushes);
  // No clock injected: latency tracking stays off.
  EXPECT_EQ(stats.latency_samples, 0u);
  EXPECT_DOUBLE_EQ(stats.latency_p99_us, 0.0);
}

// ------------------------------------------------------- allocation audit

TEST(ServeAlloc, SequentialSteadyStateIsAllocationFree) {
  // After the first requests have warmed the ticket pool, the admission
  // matrix and the policy workspace, the decide() round trip — enqueue,
  // flush forward, scatter, wake — must perform zero heap allocations in
  // this thread AND the worker.
  const policy::ObservationLayout layout;
  Rng rng(29);
  const nn::Matrix obs = fake_obs_batch(layout, rng, 16);
  nn::Rng drl_rng(37);
  policy::DrlPolicyConfig cfg;
  cfg.state_dim = layout.dim();
  auto policy = std::make_shared<policy::DrlPolicy>(cfg, drl_rng);
  DecisionService service(policy, layout.dim(),
                          {.max_batch = 4, .max_wait_us = 0, .now_us = &fake_now_us});

  for (std::size_t r = 0; r < obs.rows(); ++r) (void)service.decide(row_span(obs, r));
  const std::uint64_t before = allocations();
  for (std::size_t pass = 0; pass < 4; ++pass) {
    for (std::size_t r = 0; r < obs.rows(); ++r) (void)service.decide(row_span(obs, r));
  }
  EXPECT_EQ(allocations() - before, 0u)
      << "decide() allocated on a warmed service";
}

TEST(ServeAlloc, ConcurrentRoundsCostNoMoreThanFewerRounds) {
  // Multi-client variant in the test_alloc "more episodes may not cost more"
  // idiom: thread spawn overhead is identical between the two runs, so any
  // difference would be a per-request allocation under real micro-batching.
  const policy::ObservationLayout layout;
  Rng rng(43);
  const nn::Matrix obs = fake_obs_batch(layout, rng, 32);
  nn::Rng drl_rng(47);
  policy::DrlPolicyConfig cfg;
  cfg.state_dim = layout.dim();
  auto policy = std::make_shared<policy::DrlPolicy>(cfg, drl_rng);
  DecisionService service(policy, layout.dim(), {.max_batch = 8, .max_wait_us = 100});

  constexpr std::size_t kClients = 4;
  const auto run_rounds = [&](std::size_t rounds) {
    std::vector<std::thread> threads;
    threads.reserve(kClients);
    for (std::size_t t = 0; t < kClients; ++t) {
      threads.emplace_back([&, t] {
        for (std::size_t i = 0; i < rounds; ++i) {
          (void)service.decide(row_span(obs, (t * rounds + i) % obs.rows()));
        }
      });
    }
    for (auto& th : threads) th.join();
  };

  run_rounds(8);  // warm-up: ticket pool reaches its high-water mark
  const std::uint64_t before_short = allocations();
  run_rounds(2);
  const std::uint64_t short_cost = allocations() - before_short;
  const std::uint64_t before_long = allocations();
  run_rounds(16);
  const std::uint64_t long_cost = allocations() - before_long;
  EXPECT_LE(long_cost, short_cost)
      << "extra serving rounds allocated beyond thread-spawn overhead";
}

}  // namespace
}  // namespace ecthub::serve
