// Tests for the forecasting module and its scheduler integration.
#include "common/stats.hpp"
#include "forecast/predictors.hpp"
#include "pricing/rtp.hpp"
#include "weather/wind.hpp"

#include <gtest/gtest.h>

namespace ecthub::forecast {
namespace {

TEST(Ema, FirstObservationPrimesLevel) {
  EmaPredictor p(0.5);
  EXPECT_FALSE(p.primed());
  p.observe(10.0);
  EXPECT_TRUE(p.primed());
  EXPECT_DOUBLE_EQ(p.predict(), 10.0);
}

TEST(Ema, ConvergesToConstant) {
  EmaPredictor p(0.3);
  for (int i = 0; i < 100; ++i) p.observe(7.0);
  EXPECT_NEAR(p.predict(), 7.0, 1e-9);
}

TEST(Ema, SmoothingFactorControlsSpeed) {
  EmaPredictor fast(0.9), slow(0.1);
  fast.observe(0.0);
  slow.observe(0.0);
  fast.observe(10.0);
  slow.observe(10.0);
  EXPECT_GT(fast.predict(), slow.predict());
}

TEST(Ema, RejectsBadAlpha) {
  EXPECT_THROW(EmaPredictor(0.0), std::invalid_argument);
  EXPECT_THROW(EmaPredictor(1.5), std::invalid_argument);
}

TEST(SeasonalNaive, LearnsPerfectlyPeriodicSignal) {
  SeasonalNaivePredictor p(24, 0.5);
  auto signal = [](std::size_t t) { return 50.0 + 30.0 * ((t % 24) >= 12 ? 1.0 : 0.0); };
  for (std::size_t t = 0; t < 24 * 20; ++t) p.observe(t, signal(t));
  for (std::size_t t = 24 * 20; t < 24 * 21; ++t) {
    EXPECT_NEAR(p.predict(t), signal(t), 1e-6);
  }
}

TEST(SeasonalNaive, FallsBackToGlobalMeanBeforeSeen) {
  SeasonalNaivePredictor p(24);
  p.observe(0, 100.0);
  // Slot 5 never seen: prediction falls back to the global mean (100).
  EXPECT_DOUBLE_EQ(p.predict(5), 100.0);
}

TEST(SeasonalNaive, BeatsEmaOnDiurnalPrices) {
  // The claim behind the scheduler: a seasonal model predicts diurnal RTP
  // far better than a level-only EMA.
  pricing::RtpGenerator gen(pricing::RtpConfig{}, Rng(1));
  const TimeGrid grid(60, 24);
  const auto rtp = gen.generate(grid);

  SeasonalNaivePredictor seasonal(24, 0.2);
  const double seasonal_mae = replay_mae_seasonal(seasonal, rtp);

  // EMA replay: predict-then-observe.
  EmaPredictor ema(0.3);
  double ema_err = 0.0;
  std::size_t scored = 0;
  for (std::size_t t = 0; t < rtp.size(); ++t) {
    if (t >= 24) {
      ema_err += std::abs(ema.predict() - rtp[t]);
      ++scored;
    }
    ema.observe(rtp[t]);
  }
  const double ema_mae = ema_err / static_cast<double>(scored);
  EXPECT_LT(seasonal_mae, 0.8 * ema_mae);
}

TEST(SeasonalNaive, Validation) {
  EXPECT_THROW(SeasonalNaivePredictor(0), std::invalid_argument);
  EXPECT_THROW(SeasonalNaivePredictor(24, 0.0), std::invalid_argument);
}

TEST(Ar1, RecoversPhiOfSyntheticProcess) {
  Rng rng(2);
  Ar1Predictor p;
  double x = 0.0;
  for (int i = 0; i < 5000; ++i) {
    x = 0.7 * x + rng.normal(0.0, 1.0);
    p.observe(x);
  }
  EXPECT_NEAR(p.phi(), 0.7, 0.05);
}

TEST(Ar1, PredictAheadRevertsTowardMean) {
  Rng rng(3);
  Ar1Predictor p;
  double x = 0.0;
  for (int i = 0; i < 3000; ++i) {
    x = 5.0 + 0.6 * (x - 5.0) + rng.normal(0.0, 0.5);
    p.observe(x);
  }
  // Long-horizon forecast approaches the process mean (5.0).
  EXPECT_NEAR(p.predict_ahead(100), 5.0, 0.5);
}

TEST(Ar1, FewSamplesFallBackToLastValue) {
  Ar1Predictor p;
  p.observe(42.0);
  EXPECT_DOUBLE_EQ(p.predict(), 42.0);
}

TEST(Ar1, WindForecastBeatsNothingButIsImperfect) {
  // The paper's volatility claim, quantified: even the best simple predictor
  // leaves substantial wind error.
  weather::WindModel model(weather::WindConfig{}, Rng(4));
  const TimeGrid grid(60, 24);
  const auto wind = model.generate(grid);
  Ar1Predictor p;
  double err = 0.0, naive_err = 0.0;
  std::size_t n = 0;
  double prev = wind[0];
  for (std::size_t t = 0; t < wind.size(); ++t) {
    if (t >= 48) {
      err += std::abs(p.predict() - wind[t]);
      naive_err += std::abs(stats::mean(wind) - wind[t]);
      ++n;
    }
    p.observe(wind[t]);
    prev = wind[t];
  }
  (void)prev;
  const double ar_mae = err / static_cast<double>(n);
  const double mean_mae = naive_err / static_cast<double>(n);
  EXPECT_LT(ar_mae, mean_mae);     // AR(1) beats the unconditional mean...
  EXPECT_GT(ar_mae, 0.5);          // ...but material error remains (volatility).
}

}  // namespace
}  // namespace ecthub::forecast
