// Tests for the renewable-generation models (P_PV, P_WT of Eq. 7).
#include "common/stats.hpp"
#include "renewables/plant.hpp"
#include "renewables/pv.hpp"
#include "renewables/wind_turbine.hpp"
#include "weather/weather.hpp"

#include <gtest/gtest.h>

namespace ecthub::renewables {
namespace {

weather::WeatherSeries make_weather(std::size_t days = 2) {
  weather::WeatherGenerator gen(weather::WeatherConfig{}, Rng(77));
  return gen.generate(TimeGrid(days, 24));
}

// ---------------------------------------------------------------- PV

TEST(PvArray, ZeroAtZeroIrradiance) {
  const PvArray pv(PvConfig{});
  EXPECT_DOUBLE_EQ(pv.power_w(0.0, 20.0), 0.0);
  EXPECT_DOUBLE_EQ(pv.power_w(-10.0, 20.0), 0.0);
}

TEST(PvArray, PowerScalesWithIrradiance) {
  const PvArray pv(PvConfig{});
  EXPECT_GT(pv.power_w(800.0, 20.0), pv.power_w(400.0, 20.0));
}

TEST(PvArray, HotCellsProduceLess) {
  const PvArray pv(PvConfig{});
  EXPECT_GT(pv.power_w(800.0, 5.0), pv.power_w(800.0, 40.0));
}

TEST(PvArray, InverterClipsAtRatedPower) {
  PvConfig cfg;
  cfg.rated_power_w = 1000.0;
  cfg.area_m2 = 100.0;
  const PvArray pv(cfg);
  EXPECT_DOUBLE_EQ(pv.power_w(1000.0, 0.0), 1000.0);
}

TEST(PvArray, SeriesZeroAtNightPositiveAtNoon) {
  const PvArray pv(PvConfig{});
  const auto wx = make_weather();
  const auto series = pv.series(wx);
  ASSERT_EQ(series.size(), wx.size());
  EXPECT_DOUBLE_EQ(series[2], 0.0);   // 2 am
  EXPECT_GT(series[12], 0.0);         // noon
}

TEST(PvArray, RejectsBadConfig) {
  PvConfig bad;
  bad.efficiency = 0.0;
  EXPECT_THROW(PvArray{bad}, std::invalid_argument);
  PvConfig bad2;
  bad2.area_m2 = -1.0;
  EXPECT_THROW(PvArray{bad2}, std::invalid_argument);
  PvConfig bad3;
  bad3.rated_power_w = 0.0;
  EXPECT_THROW(PvArray{bad3}, std::invalid_argument);
}

// ---------------------------------------------------------------- WT

TEST(WindTurbine, PowerCurveRegions) {
  const WindTurbine wt(WindTurbineConfig{});
  const auto& cfg = wt.config();
  EXPECT_DOUBLE_EQ(wt.power_w(cfg.cut_in_ms - 0.5), 0.0);           // below cut-in
  EXPECT_DOUBLE_EQ(wt.power_w(cfg.rated_speed_ms), cfg.rated_power_w);  // rated
  EXPECT_DOUBLE_EQ(wt.power_w(cfg.rated_speed_ms + 5.0), cfg.rated_power_w);
  EXPECT_DOUBLE_EQ(wt.power_w(cfg.cut_out_ms + 1.0), 0.0);          // storm cut-out
}

TEST(WindTurbine, CubicRampIsMonotone) {
  const WindTurbine wt(WindTurbineConfig{});
  double prev = 0.0;
  for (double v = 3.0; v <= 11.0; v += 0.5) {
    const double p = wt.power_w(v);
    EXPECT_GE(p, prev);
    prev = p;
  }
}

TEST(WindTurbine, HalfwaySpeedBelowHalfPower) {
  // Cubic physics: at the midpoint between cut-in and rated the output is
  // well under 50% of rated.
  const WindTurbine wt(WindTurbineConfig{});
  const auto& cfg = wt.config();
  const double mid = 0.5 * (cfg.cut_in_ms + cfg.rated_speed_ms);
  EXPECT_LT(wt.power_w(mid), 0.5 * cfg.rated_power_w);
}

TEST(WindTurbine, RejectsBadConfig) {
  WindTurbineConfig bad;
  bad.cut_in_ms = 12.0;  // above rated speed
  EXPECT_THROW(WindTurbine{bad}, std::invalid_argument);
  WindTurbineConfig bad2;
  bad2.rated_power_w = -5.0;
  EXPECT_THROW(WindTurbine{bad2}, std::invalid_argument);
}

// ---------------------------------------------------------------- plant

TEST(RenewablePlant, UrbanHasPvOnly) {
  const RenewablePlant plant(PlantConfig::urban());
  EXPECT_TRUE(plant.has_pv());
  EXPECT_FALSE(plant.has_wt());
  const auto gen = plant.generate(make_weather());
  EXPECT_GT(stats::sum(gen.pv_w), 0.0);
  EXPECT_DOUBLE_EQ(stats::sum(gen.wt_w), 0.0);
}

TEST(RenewablePlant, RuralHasBoth) {
  const RenewablePlant plant(PlantConfig::rural());
  EXPECT_TRUE(plant.has_pv());
  EXPECT_TRUE(plant.has_wt());
  const auto gen = plant.generate(make_weather(7));
  EXPECT_GT(stats::sum(gen.pv_w), 0.0);
  EXPECT_GT(stats::sum(gen.wt_w), 0.0);
}

TEST(RenewablePlant, NoneGeneratesNothing) {
  const RenewablePlant plant(PlantConfig::none());
  const auto gen = plant.generate(make_weather());
  EXPECT_DOUBLE_EQ(stats::sum(gen.total_w), 0.0);
}

TEST(RenewablePlant, TotalIsSumOfParts) {
  const RenewablePlant plant(PlantConfig::rural());
  const auto gen = plant.generate(make_weather());
  for (std::size_t t = 0; t < gen.size(); ++t) {
    EXPECT_NEAR(gen.total_w[t], gen.pv_w[t] + gen.wt_w[t], 1e-9);
  }
}

TEST(RenewablePlant, RuralOutGeneratesUrban) {
  const auto wx = make_weather(14);
  const auto rural = RenewablePlant(PlantConfig::rural()).generate(wx);
  const auto urban = RenewablePlant(PlantConfig::urban()).generate(wx);
  EXPECT_GT(stats::sum(rural.total_w), stats::sum(urban.total_w));
}

TEST(RenewablePlant, GenerateIntoMatchesGenerateAndReusesBuffers) {
  const auto wx = make_weather(15);
  const RenewablePlant plant(PlantConfig::rural());
  const GenerationSeries fresh = plant.generate(wx);

  GenerationSeries reused;
  plant.generate_into(wx, reused);
  EXPECT_EQ(reused.pv_w, fresh.pv_w);
  EXPECT_EQ(reused.wt_w, fresh.wt_w);
  EXPECT_EQ(reused.total_w, fresh.total_w);

  // A second pass must reuse the channel buffers (no realloc).
  const double* pv_buf = reused.pv_w.data();
  const double* wt_buf = reused.wt_w.data();
  const double* total_buf = reused.total_w.data();
  plant.generate_into(wx, reused);
  EXPECT_EQ(reused.pv_w.data(), pv_buf);
  EXPECT_EQ(reused.wt_w.data(), wt_buf);
  EXPECT_EQ(reused.total_w.data(), total_buf);
  EXPECT_EQ(reused.total_w, fresh.total_w);  // deterministic given weather
}

}  // namespace
}  // namespace ecthub::renewables
